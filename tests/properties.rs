//! Property-based tests over core data structures and protocol invariants.

use std::collections::HashMap;

use proptest::prelude::*;
use ubft_crypto::checksum64;
use ubft_ctb::ctbcast::{Ctb, CtbConfig, CtbEffect, RegEntry, SlowMode};
use ubft_ctb::wire::signed_bytes;
use ubft_types::wire::{decode_seq, encode_seq, Wire, WireReader};
use ubft_types::{ProcessId, ReplicaId, SeqId, Slot, View};

/// Drives `N` CTBcast receivers through an adversarially scheduled run:
/// the pending effect pool is processed in an order chosen by `choices`,
/// fast-path `LOCKED` echoes may be dropped per `drops`, and the slow path
/// (always-signed) shares one mutable register array — modelling concurrent
/// register access between receivers in different stages.
///
/// Returns per-receiver delivered maps `k -> payload`.
fn adversarial_ctb_run(
    n_msgs: u64,
    tail: usize,
    choices: &[u16],
    drops: &[bool],
) -> Vec<HashMap<u64, Vec<u8>>> {
    const N: usize = 3;
    let replicas: Vec<ReplicaId> = (0..N as u32).map(ReplicaId).collect();
    let ring =
        ubft_crypto::KeyRing::generate(7, (0..N as u32).map(|i| ProcessId::Replica(ReplicaId(i))));
    let cfg = CtbConfig { n: N, tail, fast_enabled: true, slow: SlowMode::Always };
    let mut ctbs: Vec<Ctb> =
        replicas.iter().map(|&me| Ctb::new(me, ReplicaId(0), replicas.clone(), cfg)).collect();
    let mut registers: Vec<Vec<Option<RegEntry>>> = vec![vec![None; tail]; N];
    let mut delivered: Vec<HashMap<u64, Vec<u8>>> = vec![HashMap::new(); N];

    // Pending effect pool: (acting replica, effect).
    let mut pending: Vec<(usize, CtbEffect)> = Vec::new();
    for i in 0..n_msgs {
        let (_, fx) = ctbs[0].broadcast(vec![i as u8; 3]);
        pending.extend(fx.into_iter().map(|e| (0usize, e)));
    }
    let mut step = 0usize;
    while !pending.is_empty() {
        let pick =
            choices.get(step % choices.len().max(1)).copied().unwrap_or(0) as usize % pending.len();
        step += 1;
        assert!(step < 200_000, "adversarial schedule diverged");
        let (who, effect) = pending.swap_remove(pick);
        match effect {
            CtbEffect::Broadcast(wire) => {
                let is_locked = matches!(wire, ubft_ctb::wire::CtbWire::Locked { .. });
                for (r, ctb) in ctbs.iter_mut().enumerate() {
                    // The adversary may drop fast-path LOCKED echoes (the
                    // network owes nothing to the fast path); LOCK and
                    // SIGNED frames arrive eventually per TBcast.
                    let dropped = is_locked
                        && r != who
                        && drops.get((step + r) % drops.len().max(1)).copied().unwrap_or(false);
                    if dropped {
                        continue;
                    }
                    let fx = ctb.on_tb_deliver(ReplicaId(who as u32), wire.clone());
                    pending.extend(fx.into_iter().map(|e| (r, e)));
                }
            }
            CtbEffect::Sign { k, fp } => {
                let signer = ring.signer(ProcessId::Replica(ReplicaId(0))).expect("key");
                let sig = signer.sign(&signed_bytes(ReplicaId(0), k, &fp));
                let fx = ctbs[who].on_sign_done(k, sig);
                pending.extend(fx.into_iter().map(|e| (who, e)));
            }
            CtbEffect::Verify { tag, k, fp, sig } => {
                let ok = ring.verify(
                    ProcessId::Replica(ReplicaId(0)),
                    &signed_bytes(ReplicaId(0), k, &fp),
                    &sig,
                );
                let fx = ctbs[who].on_verify_done(tag, ok);
                pending.extend(fx.into_iter().map(|e| (who, e)));
            }
            CtbEffect::WriteRegister { slot, k, entry } => {
                registers[who][slot] = Some(entry);
                let fx = ctbs[who].on_register_written(k);
                pending.extend(fx.into_iter().map(|e| (who, e)));
            }
            CtbEffect::ReadSlot { slot, k } => {
                let entries: Vec<Option<RegEntry>> =
                    (0..N).map(|r| registers[r][slot].clone()).collect();
                let fx = ctbs[who].on_registers_read(k, entries);
                pending.extend(fx.into_iter().map(|e| (who, e)));
            }
            CtbEffect::Deliver { k, payload } => {
                let prev = delivered[who].insert(k.0, payload);
                assert!(prev.is_none(), "duplicate delivery of {k:?} at {who}");
            }
            CtbEffect::Equivocation { .. } => {
                panic!("honest broadcaster reported as equivocating");
            }
            CtbEffect::ArmSlowTimer { .. } => {}
        }
    }
    delivered
}

proptest! {
    /// Wire roundtrip for arbitrary byte payloads.
    #[test]
    fn wire_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let bytes = data.to_bytes();
        prop_assert_eq!(Vec::<u8>::from_bytes(&bytes).unwrap(), data);
    }

    /// Wire sequences roundtrip for arbitrary u64 vectors.
    #[test]
    fn wire_seq_roundtrip(items in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut buf = Vec::new();
        encode_seq(&items, &mut buf);
        let mut r = WireReader::new(&buf);
        let back: Vec<u64> = decode_seq(&mut r).unwrap();
        prop_assert_eq!(back, items);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn decoder_total_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ubft_core::msg::CtbMsg::from_bytes(&data);
        let _ = ubft_core::msg::TbMsg::from_bytes(&data);
        let _ = ubft_core::msg::DirectMsg::from_bytes(&data);
        let _ = ubft_ctb::wire::CtbWire::from_bytes(&data);
        let _ = ubft_ctb::wire::TbWire::from_bytes(&data);
    }

    /// Checksums are deterministic and sensitive to any single-byte change.
    #[test]
    fn checksum_detects_mutation(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        idx in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let base = checksum64(1, &data);
        prop_assert_eq!(base, checksum64(1, &data));
        let mut mutated = data.clone();
        let i = idx % mutated.len();
        mutated[i] ^= flip;
        prop_assert_ne!(base, checksum64(1, &mutated));
    }

    /// SeqId ring indices stay within the tail and wrap consistently.
    #[test]
    fn ring_index_bounds(k in any::<u64>(), t in 2usize..1024) {
        let idx = SeqId(k).ring_index(t);
        prop_assert!(idx < t);
        prop_assert_eq!(idx, SeqId(k + t as u64).ring_index(t));
    }

    /// Round-robin leadership covers all replicas once per n views.
    #[test]
    fn leader_rotation_complete(n in 1usize..16, base in 0u64..1_000_000) {
        let leaders: std::collections::BTreeSet<ReplicaId> =
            (0..n as u64).map(|i| View(base + i).leader(n)).collect();
        prop_assert_eq!(leaders.len(), n);
    }

    /// The order book conserves quantity under arbitrary order streams.
    #[test]
    fn order_book_conservation(ops in proptest::collection::vec((any::<bool>(), 1u32..50, 90u32..110), 1..200)) {
        use ubft_apps::orderbook::{OrderBookApp, OrderOp};
        use ubft_core::app::App;
        let mut book = OrderBookApp::new();
        for (is_buy, qty, price) in ops {
            let req = if is_buy {
                OrderOp::Buy { price, qty }
            } else {
                OrderOp::Sell { price, qty }
            };
            let resp = book.execute(&req.to_bytes());
            prop_assert_eq!(resp[0], 0, "well-formed orders always succeed");
            if let (Some(bid), Some(ask)) = (book.best_bid(), book.best_ask()) {
                prop_assert!(bid < ask, "book must never cross");
            }
        }
    }

    /// KV stores with the same operation history have identical snapshots
    /// (SMR determinism).
    #[test]
    fn kv_replicas_converge(ops in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..100)) {
        use ubft_apps::kv::{KvApp, KvFrontend, KvOp};
        use ubft_core::app::App;
        let mut a = KvApp::new(KvFrontend::Memcached);
        let mut b = KvApp::new(KvFrontend::Memcached);
        for (k, v) in ops {
            let op = match v % 3 {
                0 => KvOp::Get { key: vec![k] },
                1 => KvOp::Set { key: vec![k], value: vec![v] },
                _ => KvOp::Del { key: vec![k] },
            };
            let bytes = op.to_bytes();
            prop_assert_eq!(a.execute(&bytes), b.execute(&bytes));
        }
        prop_assert_eq!(a.snapshot_digest(), b.snapshot_digest());
    }

    /// TBcast receivers never deliver the same sequence number twice, under
    /// arbitrary reordered/duplicated frames.
    #[test]
    fn tbcast_no_duplication(ks in proptest::collection::vec(1u64..64, 1..256)) {
        use ubft_ctb::tbcast::{TailReceiver, TbEffect};
        use ubft_ctb::wire::TbWire;
        let mut rx = TailReceiver::new(ReplicaId(0), 128);
        let mut delivered = std::collections::HashSet::new();
        for k in ks {
            for e in rx.on_wire(TbWire { k: SeqId(k), payload: vec![] }) {
                if let TbEffect::Deliver { k, .. } = e {
                    prop_assert!(delivered.insert(k), "duplicate delivery of {:?}", k);
                }
            }
        }
    }

    /// Slots and views are ordered consistently with their numeric values.
    #[test]
    fn id_ordering(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(Slot(a) < Slot(b), a < b);
        prop_assert_eq!(View(a) < View(b), a < b);
        prop_assert_eq!(SeqId(a) < SeqId(b), a < b);
    }

    /// CTBcast under an adversarial scheduler: arbitrary interleavings of
    /// every protocol stage (including concurrent register access between
    /// receivers) and arbitrary loss of fast-path LOCKED echoes. The
    /// Algorithm 1 properties must hold on every schedule:
    /// *agreement* (no two receivers deliver different payloads for one id),
    /// *integrity* (delivered payloads are what the broadcaster sent), and
    /// — because the always-signed slow path backstops every message —
    /// *tail-validity* (ids within the final tail are delivered by all).
    #[test]
    fn ctbcast_safe_under_adversarial_scheduling(
        n_msgs in 1u64..10,
        choices in proptest::collection::vec(any::<u16>(), 16..128),
        drops in proptest::collection::vec(any::<bool>(), 8..32),
    ) {
        let tail = 4usize;
        let delivered = adversarial_ctb_run(n_msgs, tail, &choices, &drops);
        // Integrity + agreement.
        for d in &delivered {
            for (k, payload) in d {
                prop_assert_eq!(payload.as_slice(), &[(k - 1) as u8; 3][..]);
            }
        }
        // Tail-validity: everyone delivers the final `tail` ids.
        let lo = n_msgs.saturating_sub(tail as u64) + 1;
        for (r, d) in delivered.iter().enumerate() {
            for k in lo..=n_msgs {
                prop_assert!(d.contains_key(&k), "receiver {} missed in-tail id {}", r, k);
            }
        }
    }
}
