//! Backend equivalence: the wall-clock threaded runtime and the
//! deterministic simulator must agree on *what* was decided and executed,
//! even though they disagree on *when*.
//!
//! Both backends drive the identical sans-IO protocol stack; the only
//! difference is the effect interpreter (virtual-time event queue vs OS
//! threads + real timers + the in-process channel mesh + a real crypto
//! worker pool). So for a failure-free run with the same finite workload,
//! every replica must end with the same application digest and the same
//! non-noop execution log, request for request. `FlipApp`'s digest chains
//! execution order, so a single reordered, dropped, or double-executed
//! request diverges it.
//!
//! Workloads here are deliberately *finite and per-group* (each group's
//! source yields exactly its share and then dries up, ignoring the global
//! completion count): gating issuance on the global count alone would let
//! the per-group split differ between backends when groups race for the
//! last few requests, which would legitimately diverge digests.
//!
//! Timers are stretched hard (`time_scale`) so OS scheduling jitter on a
//! loaded or single-core host cannot fire a spurious progress timeout:
//! a view change inserts noop decisions, and noops execute through the
//! app on both backends, so a threaded-only view change would diverge
//! digests for a reason that has nothing to do with protocol equivalence.

use ubft::runtime::threads::{run_backend, ThreadWorkload, WallOptions, WallReport};
use ubft::runtime::{Backend, SimConfig};
use ubft_core::app::App;
use ubft_types::ClientId;

/// Stretch factor making a 1 ms progress timeout ≈ 2 s of wall time.
/// Generous on purpose: `cargo test` runs many test binaries concurrently,
/// and on a small host a replica thread starved for longer than the
/// stretched progress timeout would view-change and (correctly but
/// unhelpfully) diverge the digests.
const SCALE: u32 = 2_000;

fn flip_apps(n: usize) -> Vec<Box<dyn App + Send>> {
    (0..n).map(|_| Box::new(ubft_apps::FlipApp::new()) as Box<dyn App + Send>).collect()
}

/// A finite per-group source: exactly `per_group` 32-byte payloads tagged
/// with the group id, then `None` forever. Driven by an internal counter,
/// not the completion-count argument, so both backends see the exact same
/// payload sequence regardless of global interleaving.
fn finite_workload(g: usize, per_group: u64) -> ThreadWorkload {
    let mut next = 0u64;
    Box::new(move |_| {
        if next >= per_group {
            return None;
        }
        let i = next;
        next += 1;
        let mut p = vec![0u8; 32];
        p[..8].copy_from_slice(&i.to_le_bytes());
        p[8..16].copy_from_slice(&(g as u64).to_le_bytes());
        Some(p)
    })
}

fn run_both(cfg: &SimConfig, per_group: u64, groups: usize) -> (WallReport, WallReport) {
    let opts = WallOptions {
        requests: per_group * groups as u64,
        warmup: 0,
        deadline: std::time::Duration::from_secs(120),
        // The digest comparison needs *every* replica drained, not just
        // the f + 1 that answered the last client; under a loaded test
        // host the default 300 ms can cut the lagging replica off
        // mid-queue, so give it real slack.
        settle: std::time::Duration::from_secs(2),
    };
    let n = cfg.params.n();
    let sim = run_backend(
        &cfg.clone().with_backend(Backend::Sim),
        |_| flip_apps(n),
        |g| finite_workload(g, per_group),
        &opts,
    );
    let thr = run_backend(
        &cfg.clone().with_backend(Backend::Threads),
        |_| flip_apps(n),
        |g| finite_workload(g, per_group),
        &opts,
    );
    (sim, thr)
}

/// Every replica of every group: same digest, same execution log, and the
/// threaded run actually finished its closed loop.
fn assert_equivalent(sim: &WallReport, thr: &WallReport, total: u64) {
    assert_eq!(sim.backend, Backend::Sim);
    assert_eq!(thr.backend, Backend::Threads);
    assert_eq!(sim.completed, total, "simulator did not complete the workload");
    assert_eq!(thr.completed, total, "threaded backend did not complete the workload");
    assert_eq!(sim.groups.len(), thr.groups.len());
    for (g, (gs, gt)) in sim.groups.iter().zip(&thr.groups).enumerate() {
        assert_eq!(gs.completed, gt.completed, "group {g}: per-group completion split differs");
        assert_eq!(gs.replicas.len(), gt.replicas.len());
        for (r, (rs, rt)) in gs.replicas.iter().zip(&gt.replicas).enumerate() {
            assert_eq!(
                rt.transfer_misses, 0,
                "group {g} replica {r}: threaded run was overloaded (state-transfer miss)"
            );
            assert_eq!(rs.executed, rt.executed, "group {g} replica {r}: execution logs diverge");
            assert_eq!(
                rs.app_digest, rt.app_digest,
                "group {g} replica {r}: application digests diverge"
            );
        }
    }
}

/// Single group, signature-free fast path, two seeds.
#[test]
fn threads_match_sim_single_group_fast_path() {
    for seed in [7u64, 21] {
        let cfg = SimConfig::paper_default(seed).with_time_scale(SCALE);
        let (sim, thr) = run_both(&cfg, 120, 1);
        assert_equivalent(&sim, &thr, 120);
        // The fast path decides without a single signature; the pinned
        // simulator digest suite guards *its* exact values, here we only
        // need agreement.
        assert!(thr.elapsed > std::time::Duration::ZERO);
    }
}

/// Single group forced onto the signed slow path: every broadcast runs
/// sign → SWMR register write quorum → verify, so this exercises the
/// crypto worker pool and the memory-node threads' read/write quorums —
/// none of which exist in the simulator's cost-model form.
#[test]
fn threads_match_sim_single_group_slow_path() {
    let cfg = SimConfig::paper_default(13).slow_only().with_time_scale(SCALE);
    let (sim, thr) = run_both(&cfg, 60, 1);
    assert_equivalent(&sim, &thr, 60);
}

/// Four shards, each with its own finite workload: per-group splits and
/// per-replica logs must agree group by group.
#[test]
fn threads_match_sim_four_shards() {
    let cfg = SimConfig::paper_default(42).with_shards(4).with_time_scale(SCALE);
    let (sim, thr) = run_both(&cfg, 40, 4);
    assert_equivalent(&sim, &thr, 160);
}

/// The execution logs the equivalence above leans on are themselves
/// well-formed: per-client sequence numbers strictly increase (no dup, no
/// reorder) on every replica of the threaded run.
#[test]
fn threaded_exec_logs_are_per_client_monotone() {
    let cfg = SimConfig::paper_default(99).with_time_scale(SCALE);
    let opts = WallOptions { requests: 80, warmup: 0, ..WallOptions::default() };
    let thr = run_backend(
        &cfg.with_backend(Backend::Threads),
        |_| flip_apps(3),
        |g| finite_workload(g, 80),
        &opts,
    );
    assert_eq!(thr.completed, 80);
    for gr in &thr.groups {
        for rep in &gr.replicas {
            let mut last: std::collections::HashMap<ClientId, u64> = Default::default();
            for &(client, seq) in &rep.executed {
                if let Some(prev) = last.insert(client, seq) {
                    assert!(
                        seq > prev,
                        "client {client:?} re-executed or reordered: {prev} -> {seq}"
                    );
                }
            }
        }
    }
}
