//! Workspace-level integration tests: the full simulated stack, end to end.

use ubft::runtime::cluster::Cluster;
use ubft::runtime::SimConfig;
use ubft_apps::{FlipApp, KvApp, KvFrontend, OrderBookApp};
use ubft_core::app::App;
use ubft_core::PathMode;
use ubft_sim::failure::FailurePlan;
use ubft_types::{Duration, Time};

fn flip_apps(n: usize) -> Vec<Box<dyn App>> {
    (0..n).map(|_| Box::new(FlipApp::new()) as Box<dyn App>).collect()
}

fn fixed_payload(size: usize) -> Box<dyn FnMut(u64) -> Vec<u8>> {
    Box::new(move |i| {
        let mut p = vec![0u8; size];
        let k = 8.min(size);
        p[..k].copy_from_slice(&i.to_le_bytes()[..k]);
        p
    })
}

#[test]
fn fast_path_microsecond_latency() {
    let cfg = SimConfig::paper_default(1).fast_only();
    let mut cluster = Cluster::new(cfg, flip_apps(3), fixed_payload(32));
    let report = cluster.run(300, 30);
    let mut lat = report.latency;
    assert!(lat.median() < Duration::from_micros(20), "median {}", lat.median());
    assert_eq!(report.counters.ctb_signs, 0, "fast path must not sign");
}

#[test]
fn slow_path_crypto_bound_but_correct() {
    let cfg = SimConfig::paper_default(2).slow_only();
    let mut cluster = Cluster::new(cfg, flip_apps(3), fixed_payload(32));
    let report = cluster.run(100, 10);
    let mut lat = report.latency;
    assert!(lat.median() > Duration::from_micros(100));
    assert!(report.counters.reg_writes > 0, "slow path must touch registers");
    assert!(report.counters.reg_reads > 0);
}

#[test]
fn checkpointing_run_crosses_window_boundary() {
    // Default window is 256: run 600 requests so two checkpoints happen and
    // the sliding window advances twice.
    let cfg = SimConfig::paper_default(3).fast_only();
    let mut cluster = Cluster::new(cfg, flip_apps(3), fixed_payload(32));
    let report = cluster.run(600, 0);
    assert_eq!(report.completed, 600);
}

#[test]
fn kv_store_replication_end_to_end() {
    use ubft_apps::workload::{kv_request, WorkloadRng};
    let cfg = SimConfig::paper_default(4).fast_only();
    let apps: Vec<Box<dyn App>> =
        (0..3).map(|_| Box::new(KvApp::new(KvFrontend::Redis)) as Box<dyn App>).collect();
    let mut rng = WorkloadRng::new(5);
    let mut populated = 0u64;
    let workload = Box::new(move |_| kv_request(&mut rng, &mut populated));
    let mut cluster = Cluster::new(cfg, apps, workload);
    let report = cluster.run(400, 40);
    assert_eq!(report.completed, 440);
}

#[test]
fn order_book_replication_end_to_end() {
    use ubft_apps::workload::{order_request, WorkloadRng};
    let cfg = SimConfig::paper_default(5).fast_only();
    let apps: Vec<Box<dyn App>> =
        (0..3).map(|_| Box::new(OrderBookApp::new()) as Box<dyn App>).collect();
    let mut rng = WorkloadRng::new(6);
    let workload = Box::new(move |_| order_request(&mut rng));
    let mut cluster = Cluster::new(cfg, apps, workload);
    let report = cluster.run(400, 40);
    assert_eq!(report.completed, 440);
}

#[test]
fn leader_crash_triggers_view_change_and_recovery() {
    let mut cfg = SimConfig::paper_default(6);
    cfg.path = PathMode::FastWithFallback;
    // Crash the leader about halfway through the run (~9 µs per request on
    // the healthy fast path), so the tail must ride a view change.
    cfg.failures = FailurePlan::none().crash_replica(0, Time::ZERO + Duration::from_millis(1));
    let mut cluster = Cluster::new(cfg, flip_apps(3), fixed_payload(32));
    let report = cluster.run(200, 0);
    assert_eq!(report.completed, 200);
    // The survivors moved to a new view led by replica 1.
    assert!(report.views[1].0 >= 1);
    assert!(report.views[2].0 >= 1);
}

#[test]
fn follower_crash_forces_slow_path_but_completes() {
    let mut cfg = SimConfig::paper_default(7);
    cfg.path = PathMode::FastWithFallback;
    // Crash follower 2 early enough that most of the run happens without it
    // (the whole 60-request run takes well under a millisecond when healthy).
    cfg.failures = FailurePlan::none().crash_replica(2, Time::ZERO + Duration::from_micros(100));
    let mut cluster = Cluster::new(cfg, flip_apps(3), fixed_payload(32));
    let report = cluster.run(60, 0);
    assert_eq!(report.completed, 60);
    // With a crashed follower, fast-path unanimity fails: CTBcast falls back
    // to its signed slow path and the engine certifies via signatures.
    assert!(report.counters.ctb_signs > 0, "CTBcast slow path must sign");
    assert!(report.counters.engine_signs > 0, "engine slow path must sign");
}

#[test]
fn memory_node_crash_tolerated_on_slow_path() {
    let mut cfg = SimConfig::paper_default(8).slow_only();
    cfg.failures = FailurePlan::none().crash_mem_node(0, Time::ZERO);
    let mut cluster = Cluster::new(cfg, flip_apps(3), fixed_payload(32));
    let report = cluster.run(50, 5);
    assert_eq!(report.completed, 55);
}

#[test]
fn deterministic_end_to_end() {
    let run = |seed: u64| {
        let cfg = SimConfig::paper_default(seed).fast_only();
        let mut cluster = Cluster::new(cfg, flip_apps(3), fixed_payload(32));
        let r = cluster.run(100, 10);
        (r.latency.mean(), r.end)
    };
    assert_eq!(run(99), run(99));
}

#[test]
fn five_replica_deployment() {
    let mut cfg = SimConfig::paper_default(10).fast_only();
    cfg.params = cfg.params.with_f(2);
    let mut cluster = Cluster::new(cfg, flip_apps(5), fixed_payload(32));
    let report = cluster.run(100, 10);
    assert_eq!(report.completed, 110);
}

#[test]
fn small_tail_still_live() {
    // t = 16 thrashes (Figure 11) but must never deadlock.
    let cfg = SimConfig::paper_default(11).fast_only().with_tail(16);
    let mut cluster = Cluster::new(cfg, flip_apps(3), fixed_payload(32));
    let report = cluster.run(300, 0);
    assert_eq!(report.completed, 300);
}

#[test]
fn large_requests_supported() {
    let cfg = SimConfig::paper_default(12).fast_only().with_max_request(4096);
    let mut cluster = Cluster::new(cfg, flip_apps(3), fixed_payload(4096));
    let report = cluster.run(50, 5);
    assert_eq!(report.completed, 55);
}
