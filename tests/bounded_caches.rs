//! Bounded per-client caches (`SimConfig::with_client_cache_cap`): the
//! request-dedup table and last-reply cache become deterministic LRUs.
//!
//! The safety property under test: **eviction never causes re-execution
//! of a still-in-flight request**. The engine floors the effective
//! capacity at `2 · window · max_batch` — the most distinct clients that
//! can execute between a request's first slot and any legal duplicate
//! slot (a re-proposal across a view change must land inside the
//! acceptance window) — so an in-flight request's dedup entry is
//! structurally never the eviction victim. These tests flood far more
//! clients than the cap, prove eviction actually occurred (the table
//! stays at the floored cap instead of one-entry-per-client), and assert
//! the capped run is *behaviourally identical* to the unbounded one:
//! same completion count and same final application digest on every
//! replica. `FlipApp`'s digest chains execution order, so even one
//! double-executed request would diverge it.

use ubft::runtime::cluster::Cluster;
use ubft::runtime::SimConfig;
use ubft_core::app::App;
use ubft_crypto::Digest;
use ubft_sim::failure::FailurePlan;
use ubft_types::{Duration, Time};

fn flip_apps(n: usize) -> Vec<Box<dyn App>> {
    (0..n).map(|_| Box::new(ubft_apps::FlipApp::new()) as Box<dyn App>).collect()
}

fn payload32() -> Box<dyn FnMut(u64) -> Vec<u8>> {
    Box::new(|i| {
        let mut p = vec![0u8; 32];
        p[..8].copy_from_slice(&i.to_le_bytes());
        p
    })
}

/// `tail = 4`, `window = 8`: the dedup floor is `2 · 8 · 1 = 16`, small
/// enough that a 48-client flood must evict.
const CLIENTS: usize = 48;
const FLOOR: usize = 16;

fn small_window_cfg(seed: u64) -> SimConfig {
    SimConfig::paper_default(seed).with_tail(4).with_window(8).with_clients(CLIENTS)
}

struct Outcome {
    completed: u64,
    digests: Vec<Digest>,
    dedup_entries: Vec<usize>,
    views: Vec<u64>,
}

fn run(cfg: SimConfig, requests: u64) -> Outcome {
    let mut cluster = Cluster::new(cfg, flip_apps(3), payload32());
    let report = cluster.run(requests, 0);
    Outcome {
        completed: report.completed,
        digests: (0..3).map(|r| cluster.app_digest(r)).collect(),
        dedup_entries: (0..3).map(|r| cluster.dedup_entries(r)).collect(),
        views: report.views.iter().map(|v| v.0).collect(),
    }
}

/// Healthy flood: 48 clients against an effective cap of 16. Eviction
/// must occur (the table sits exactly at the cap, not at one entry per
/// client) and must change nothing observable.
#[test]
fn capped_flood_is_behaviourally_identical_to_unbounded() {
    let unbounded = run(small_window_cfg(31).fast_only(), 300);
    let capped = run(small_window_cfg(31).fast_only().with_client_cache_cap(1), 300);

    assert_eq!(unbounded.completed, 300);
    assert_eq!(capped.completed, unbounded.completed);
    assert_eq!(capped.digests, unbounded.digests, "eviction altered execution");
    // Unbounded: one entry per client forever. Capped: LRU pegged at the
    // floored cap — proof that eviction actually kicked in.
    for r in 0..3 {
        assert_eq!(unbounded.dedup_entries[r], CLIENTS);
        assert_eq!(capped.dedup_entries[r], FLOOR, "replica {r} not at the floored cap");
    }
}

/// The in-flight hazard the floor exists for: a leader crash mid-run
/// forces a view change, and requests already executed may be re-proposed
/// into a second slot by the new leader. If eviction could forget such a
/// request's dedup entry before its duplicate slot executed, the request
/// would execute twice and the digest would diverge from the unbounded
/// run. It must not.
#[test]
fn eviction_never_reexecutes_an_inflight_request_across_a_view_change() {
    let crash = |seed| {
        let mut cfg = small_window_cfg(seed);
        cfg.failures =
            FailurePlan::none().crash_replica(0, Time::ZERO + Duration::from_micros(400));
        cfg
    };
    for seed in [13, 14, 15] {
        let unbounded = run(crash(seed), 200);
        let capped = run(crash(seed), 200);
        let capped_cfg_run = run(crash(seed).with_client_cache_cap(1), 200);

        // Sanity: the schedule is deterministic and actually view-changes.
        assert_eq!(unbounded.digests, capped.digests);
        assert!(capped_cfg_run.views[1] >= 1, "seed {seed}: no view change happened");

        assert_eq!(capped_cfg_run.completed, unbounded.completed, "seed {seed}");
        // Survivors (the crashed leader stops executing mid-run).
        for r in 1..3 {
            assert_eq!(
                capped_cfg_run.digests[r], unbounded.digests[r],
                "seed {seed}: replica {r} diverged — eviction re-executed a request"
            );
            assert!(capped_cfg_run.dedup_entries[r] <= FLOOR, "seed {seed}: cap not enforced");
        }
    }
}

/// The capacity knob defaults to `None`: a run that never sets it is the
/// exact unbounded paper prototype (also pinned by `tests/pinned_sim.rs`;
/// this is the direct statement).
#[test]
fn default_is_unbounded() {
    let out = run(small_window_cfg(77).fast_only(), 300);
    assert_eq!(out.dedup_entries, vec![CLIENTS; 3]);
    assert_eq!(out.views, vec![0, 0, 0]);
}
