//! Reproduction of **uBFT: Microsecond-Scale BFT using Disaggregated
//! Memory** (Aguilera et al., ASPLOS 2023).
//!
//! uBFT is a state-machine-replication system that tolerates `f` Byzantine
//! replicas with only `2f + 1` replicas, microsecond-scale latency, and
//! practically bounded memory, using disaggregated memory as its only
//! trusted component. This workspace rebuilds the complete system — the
//! consensus engine, Consistent Tail Broadcast, reliable SWMR registers,
//! the circular-buffer transport, an RDMA fabric model, and the Mu/MinBFT
//! baselines — on a deterministic discrete-event simulator, so the paper's
//! entire evaluation reproduces on a laptop from a seed.
//!
//! # Quickstart
//!
//! Replicate an application across three simulated replicas and measure
//! end-to-end client latency on the signature-less fast path:
//!
//! ```
//! use ubft::runtime::cluster::Cluster;
//! use ubft::runtime::SimConfig;
//! use ubft_apps::FlipApp;
//! use ubft_core::app::App;
//!
//! let cfg = SimConfig::paper_default(42).fast_only();
//! let apps: Vec<Box<dyn App>> =
//!     (0..3).map(|_| Box::new(FlipApp::new()) as Box<dyn App>).collect();
//! let workload = Box::new(|i: u64| i.to_le_bytes().to_vec());
//!
//! let mut cluster = Cluster::new(cfg, apps, workload);
//! let report = cluster.run(100, 10);
//! assert_eq!(report.completed, 110);
//!
//! let mut latency = report.latency;
//! // Byzantine fault tolerance in ~9 virtual microseconds per request.
//! assert!(latency.median() < ubft_types::Duration::from_micros(20));
//! // The fast path never touches a signature.
//! assert_eq!(report.counters.ctb_signs, 0);
//! ```
//!
//! More runnable entry points live in `examples/` at the repository root:
//! `quickstart` (the snippet above), `kv_store`, `order_matching`,
//! `crash_failover`, `byzantine_leader`, and `replica_replacement`
//! (crash a replica mid-run, boot a fresh node for its identity, and
//! watch it converge bit-for-bit via `SimConfig::with_replacement`) —
//! run any of them with `cargo run --release --example <name>`.
//!
//! # Batching and pipelining
//!
//! One consensus slot can decide a whole *batch* of requests
//! ([`core::msg::Batch`]), amortizing the fixed per-slot protocol cost —
//! the throughput lever of the paper's Figures 10/11. Two knobs control
//! it: [`runtime::SimConfig::with_batch`] bounds how many requests share
//! a slot, and [`runtime::SimConfig::with_pipeline_depth`] bounds how many
//! slots the leader keeps in flight (a *narrow* pipeline is what lets a
//! backlog accumulate so batches actually form). The defaults — batch 1,
//! window-wide pipeline — reproduce the unbatched engine exactly.
//!
//! ```
//! use ubft::runtime::cluster::Cluster;
//! use ubft::runtime::SimConfig;
//! use ubft_apps::FlipApp;
//! use ubft_core::app::App;
//!
//! // Eight concurrent clients, at most two slots in flight, up to four
//! // requests per slot: the backlog behind the full pipeline flushes as
//! // multi-request batches.
//! let cfg = SimConfig::paper_default(7)
//!     .fast_only()
//!     .with_clients(8)
//!     .with_pipeline_depth(2)
//!     .with_batch(4);
//! let apps: Vec<Box<dyn App>> =
//!     (0..3).map(|_| Box::new(FlipApp::new()) as Box<dyn App>).collect();
//! let workload = Box::new(|i: u64| i.to_le_bytes().to_vec());
//!
//! let mut cluster = Cluster::new(cfg, apps, workload);
//! let report = cluster.run(80, 8);
//! assert_eq!(report.completed, 88);
//! // Batches count their contents: every completed request was decided
//! // (requests still in flight when the run stops may add a few more).
//! assert!(cluster.decided_of(0) >= 88);
//! ```
//!
//! # Sharding: many groups, one memory pool
//!
//! uBFT keeps each consensus group small (`2f + 1` replicas, bounded
//! memory) precisely so many groups can share one pool of disaggregated
//! memory. [`runtime::ShardedCluster`] deploys
//! [`runtime::SimConfig::with_shards`] independent groups over one
//! fabric and one set of passive memory nodes, routing every request by
//! key hash through [`apps::ShardRouter`] (FNV over the KV key;
//! round-robin for keyless payloads). Aggregate throughput scales nearly
//! linearly with the group count while per-request latency stays flat —
//! see the `shard_sweep` table in `EXPERIMENTS.md`.
//!
//! ```
//! use ubft::runtime::{ShardedCluster, SimConfig};
//! use ubft_apps::FlipApp;
//! use ubft_core::app::App;
//!
//! // Two consensus groups on one fabric; keyless Flip requests
//! // round-robin across them.
//! let cfg = SimConfig::paper_default(3).fast_only().with_shards(2);
//! let mut sharded = ShardedCluster::new(
//!     cfg,
//!     |_group| (0..3).map(|_| Box::new(FlipApp::new()) as Box<dyn App>).collect(),
//!     Box::new(|i: u64| i.to_le_bytes().to_vec()),
//! );
//! let report = sharded.run(60, 6);
//! assert_eq!(report.aggregate.completed, 66);
//! assert_eq!(report.shards.len(), 2);
//! // Both groups served a slice of the key space.
//! assert!(report.shards.iter().all(|s| s.completed > 0));
//! ```
//!
//! With a single shard, `ShardedCluster` reproduces [`runtime::Cluster`]
//! bit-for-bit — same seeds, same host layout, same event order — for
//! workloads that derive requests from internal state, like every stock
//! §7.1 generator. (The one observable difference: `ShardedCluster`
//! passes the global generation index as the workload's `u64` argument,
//! while `Cluster` passes the completed count, so a workload that is a
//! pure function of that argument sees different values when several
//! clients race.) The equivalence is pinned by `tests/sharding.rs`,
//! which also proves fault *containment*: a crash or Byzantine fault
//! injected into one shard (via
//! [`runtime::SimConfig::with_shard_failures`]) leaves every other
//! shard's report untouched.
//!
//! # Failure injection
//!
//! Inject failures — crashes, partitions, asynchrony, or Byzantine
//! behaviour — through [`sim::failure::FailurePlan`] on the same config;
//! see `tests/byzantine.rs` for the full fault-injection suite and
//! `crates/bench` for the binaries that regenerate every table and figure
//! of the paper's evaluation (documented in `EXPERIMENTS.md`).
//!
//! # Layer map
//!
//! | Module | Contents | Paper |
//! |---|---|---|
//! | [`types`] | ids, views, slots, virtual time, wire codec | — |
//! | [`crypto`] | SHA-256, HMAC, checksums, signatures, f+1 certificates | §2.4 |
//! | [`sim`] | event queue, RNG, latency/cost models, failure plans | Table 1 |
//! | [`rdma`] | one-sided READ/WRITE fabric with per-region permissions | §2.3 |
//! | [`dmem`] | reliable SWMR regular registers over memory nodes | §6.1 |
//! | [`transport`] | ack-free circular-buffer channels, client RPC | §6.2 |
//! | [`ctb`] | Tail Broadcast + Consistent Tail Broadcast (Algorithm 1) | §4 |
//! | [`core`] | the uBFT SMR engine (Algorithms 2–5), client | §5, App. B |
//! | [`apps`] | Flip, KV store, order-matching engine | §7.1 |
//! | [`mu`], [`minbft`] | the crash-only and SGX-counter baselines | §7.2 |
//! | [`runtime`] | the simulated deployment wiring everything together | §7 |
//!
//! `ARCHITECTURE.md` at the repository root walks through the same layers
//! in depth: the dependency DAG between the crates, the sans-IO
//! `Effect`-driven engine loop, and where request batching and the
//! proposal pipeline sit in it.

#![deny(missing_docs)]

pub use ubft_apps as apps;
pub use ubft_core as core;
pub use ubft_crypto as crypto;
pub use ubft_ctb as ctb;
pub use ubft_dmem as dmem;
pub use ubft_minbft as minbft;
pub use ubft_mu as mu;
pub use ubft_rdma as rdma;
pub use ubft_runtime as runtime;
pub use ubft_sim as sim;
pub use ubft_transport as transport;
pub use ubft_types as types;
