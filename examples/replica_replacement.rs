//! Live replica replacement: crash a replica mid-run, boot a fresh node
//! for the same replica id on a new host, and watch it reconstruct the
//! group's state from the memory nodes, a certified checkpoint snapshot,
//! and the Join/JoinAck handshake — while clients never stop completing.
//!
//! ```sh
//! cargo run --release --example replica_replacement
//! ```

use ubft::runtime::cluster::Cluster;
use ubft::runtime::SimConfig;
use ubft_apps::{KvApp, KvFrontend};
use ubft_core::app::App;
use ubft_types::{Duration, Time};

fn kv_apps() -> Vec<Box<dyn App>> {
    (0..3).map(|_| Box::new(KvApp::new(KvFrontend::Redis)) as Box<dyn App>).collect()
}

fn kv_workload(seed: u64) -> Box<dyn FnMut(u64) -> Vec<u8>> {
    let mut rng = ubft_apps::workload::WorkloadRng::new(seed);
    let mut populated = 0u64;
    Box::new(move |_| ubft_apps::workload::kv_request(&mut rng, &mut populated))
}

fn main() {
    // Small window/tail so checkpoints — the replacement's state-transfer
    // anchor — happen every 32 slots instead of every 256.
    let cfg = |seed: u64| SimConfig::paper_default(seed).with_tail(16).with_window(32);

    // Baseline: the same seed and workload with no faults at all.
    let mut fault_free = Cluster::new(cfg(11), kv_apps(), kv_workload(42));
    fault_free.run(600, 0);
    fault_free.settle(Duration::from_millis(2));
    let reference = fault_free.app_digest(0);

    // Replica 1 crashes 300 µs in; its replacement boots 400 µs later.
    let crash_at = Time::ZERO + Duration::from_micros(300);
    let mut cluster = Cluster::new(
        cfg(11).with_replacement(1, crash_at, Duration::from_micros(400)),
        kv_apps(),
        kv_workload(42),
    );
    let report = cluster.run(600, 0);
    cluster.settle(Duration::from_millis(2));

    println!("requests completed across the crash + replacement: {}", report.completed);
    println!("final views: {:?}", report.views);
    println!(
        "snapshot bytes retained per replica (transfer source): {}",
        cluster.replica_snapshot_bytes(0)
    );
    for r in 0..3 {
        let mark =
            if cluster.app_digest(r) == reference { "== fault-free digest" } else { "DIVERGED" };
        println!("replica {r}: exec_next={} digest {mark}", cluster.exec_next(r).0);
    }
    assert_eq!(report.completed, 600);
    for r in 0..3 {
        assert_eq!(cluster.app_digest(r), reference, "replica {r} diverged");
    }
    println!("the replaced replica converged bit-for-bit. \u{2713}");
}
