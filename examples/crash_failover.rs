//! Leader failover: crash the leader mid-run and watch the view change
//! elect a new one while every surviving replica stays consistent.
//!
//! ```sh
//! cargo run --release --example crash_failover
//! ```

use ubft::runtime::cluster::Cluster;
use ubft::runtime::SimConfig;
use ubft_apps::FlipApp;
use ubft_core::app::App;
use ubft_core::PathMode;
use ubft_sim::failure::FailurePlan;
use ubft_types::{Duration, Time};

fn main() {
    let mut cfg = SimConfig::paper_default(5);
    cfg.path = PathMode::FastWithFallback;
    // The leader (replica 0) crashes 2 ms into the run.
    cfg.failures = FailurePlan::none().crash_replica(0, Time::ZERO + Duration::from_millis(2));
    let apps: Vec<Box<dyn App>> =
        (0..3).map(|_| Box::new(FlipApp::new()) as Box<dyn App>).collect();
    let workload = Box::new(|i: u64| i.to_le_bytes().to_vec());
    let mut cluster = Cluster::new(cfg, apps, workload);
    let report = cluster.run(300, 0);
    let mut lat = report.latency;
    println!("requests completed across the leader crash: {}", report.completed);
    println!("final views: {:?}", report.views);
    println!("p50 {:>9}  max (failover blip) {:>9}", lat.median(), lat.max());
    assert!(
        report.views.iter().skip(1).any(|v| v.0 >= 1),
        "surviving replicas should have moved past view 0"
    );
}
