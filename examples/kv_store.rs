//! A Byzantine-tolerant key-value store: the paper's Memcached scenario.
//!
//! Runs the paper's §7.1 KV workload (16 B keys, 32 B values, 30% GETs)
//! against a uBFT-replicated store and prints the latency distribution.
//!
//! ```sh
//! cargo run --release --example kv_store
//! ```

use ubft::runtime::cluster::Cluster;
use ubft::runtime::SimConfig;
use ubft_apps::workload::{kv_request, WorkloadRng};
use ubft_apps::{KvApp, KvFrontend};
use ubft_core::app::App;

fn main() {
    let cfg = SimConfig::paper_default(7).fast_only();
    let apps: Vec<Box<dyn App>> =
        (0..3).map(|_| Box::new(KvApp::new(KvFrontend::Memcached)) as Box<dyn App>).collect();
    let mut rng = WorkloadRng::new(99);
    let mut populated = 0u64;
    let workload = Box::new(move |_| kv_request(&mut rng, &mut populated));
    let mut cluster = Cluster::new(cfg, apps, workload);
    let report = cluster.run(2000, 200);
    let mut lat = report.latency;
    println!("replicated memcached-like KV store (3 replicas, f = 1 Byzantine)");
    println!("  p50 {:>9}", lat.percentile(50.0));
    println!("  p90 {:>9}", lat.percentile(90.0));
    println!("  p99 {:>9}", lat.percentile(99.0));
    println!("  requests completed: {}", report.completed);
}
