//! A Byzantine leader equivocates: it proposes *different* requests to
//! different replicas under the same CTBcast identifier — the exact attack
//! Consistent Tail Broadcast exists to stop. Watch the fast path refuse to
//! deliver, the slow path certify a single value, and the correct replicas
//! stay in agreement while the client keeps completing requests.
//!
//! ```sh
//! cargo run --release --example byzantine_leader
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use ubft::runtime::cluster::Cluster;
use ubft::runtime::SimConfig;
use ubft_apps::FlipApp;
use ubft_core::app::App;
use ubft_core::PathMode;
use ubft_crypto::Digest;
use ubft_sim::failure::{ByzantineMode, FailurePlan};
use ubft_types::Time;

/// Wraps the demo app and records every executed request, so we can check
/// SMR agreement (log prefix consistency) at the end.
struct Recorded {
    inner: FlipApp,
    log: Rc<RefCell<Vec<Vec<u8>>>>,
}

impl App for Recorded {
    fn execute(&mut self, request: &[u8]) -> Vec<u8> {
        self.log.borrow_mut().push(request.to_vec());
        self.inner.execute(request)
    }
    fn snapshot_digest(&self) -> Digest {
        self.inner.snapshot_digest()
    }
    fn snapshot_bytes(&self) -> Vec<u8> {
        self.inner.snapshot_bytes()
    }
    fn restore_bytes(&mut self, bytes: &[u8]) {
        self.inner.restore_bytes(bytes);
    }
}

fn main() {
    let mut cfg = SimConfig::paper_default(13);
    cfg.path = PathMode::FastWithFallback;
    // Replica 0 — the leader of view 0 — equivocates from the start.
    cfg.failures = FailurePlan::none().byzantine(0, ByzantineMode::EquivocateProposals, Time::ZERO);

    let logs: Vec<Rc<RefCell<Vec<Vec<u8>>>>> =
        (0..3).map(|_| Rc::new(RefCell::new(Vec::new()))).collect();
    let apps: Vec<Box<dyn App>> = logs
        .iter()
        .map(|log| {
            Box::new(Recorded { inner: FlipApp::new(), log: Rc::clone(log) }) as Box<dyn App>
        })
        .collect();
    let workload = Box::new(|i: u64| {
        let mut p = vec![0u8; 32];
        p[..8].copy_from_slice(&i.to_le_bytes());
        p
    });
    let mut cluster = Cluster::new(cfg, apps, workload);
    let report = cluster.run(50, 0);
    let mut lat = report.latency;

    println!("requests completed under an equivocating leader: {}", report.completed);
    println!("final views: {:?}", report.views);
    println!(
        "p50 {:>9}  p99 {:>9}  (the equivocating fast path never reaches unanimity,\n\
         so every request pays the signed slow path or a view change)",
        lat.median(),
        lat.percentile(99.0)
    );
    println!(
        "engine signatures: {}  CTBcast signatures: {}",
        report.counters.engine_signs, report.counters.ctb_signs
    );
    for (r, log) in logs.iter().enumerate() {
        println!("replica {r} executed {} requests", log.borrow().len());
    }

    // SMR agreement between the correct replicas (1 and 2): one history is
    // a prefix of the other. A replica the Byzantine leader starves may lag
    // — CTBcast does not owe anyone delivery from a Byzantine broadcaster —
    // but it can never diverge.
    let (a, b) = (logs[1].borrow(), logs[2].borrow());
    let n = a.len().min(b.len());
    assert_eq!(a[..n], b[..n], "correct replicas diverged — agreement broken!");
    println!("correct replicas 1 and 2 agree on their common prefix: agreement held");
}
