//! A Byzantine-tolerant financial order matching engine: the paper's
//! Liquibook scenario (§7.1).
//!
//! ```sh
//! cargo run --release --example order_matching
//! ```

use ubft::runtime::cluster::Cluster;
use ubft::runtime::SimConfig;
use ubft_apps::workload::{order_request, WorkloadRng};
use ubft_apps::OrderBookApp;
use ubft_core::app::App;

fn main() {
    let cfg = SimConfig::paper_default(11).fast_only();
    let apps: Vec<Box<dyn App>> =
        (0..3).map(|_| Box::new(OrderBookApp::new()) as Box<dyn App>).collect();
    let mut rng = WorkloadRng::new(123);
    let workload = Box::new(move |_| order_request(&mut rng));
    let mut cluster = Cluster::new(cfg, apps, workload);
    let report = cluster.run(2000, 200);
    let mut lat = report.latency;
    println!("replicated limit order book (50/50 BUY/SELL, price-time priority)");
    println!("  p50 {:>9}", lat.percentile(50.0));
    println!("  p90 {:>9}", lat.percentile(90.0));
    println!("  p99 {:>9}", lat.percentile(99.0));
    println!(
        "an exchange front-end gains Byzantine fault tolerance for ~{:.0} us per order",
        lat.percentile(50.0).as_micros_f64() - 5.6
    );
}
