//! Quickstart: replicate a toy application with uBFT and measure the
//! Byzantine-fault-tolerance overhead.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ubft::runtime::baselines;
use ubft::runtime::cluster::Cluster;
use ubft::runtime::SimConfig;
use ubft_apps::FlipApp;
use ubft_core::app::App;

fn main() {
    // A deterministic 32-byte workload.
    let workload = || {
        Box::new(|i: u64| {
            let mut p = vec![0u8; 32];
            p[..8].copy_from_slice(&i.to_le_bytes());
            p
        }) as Box<dyn FnMut(u64) -> Vec<u8>>
    };

    // 1. Baseline: the app without replication.
    let cfg = SimConfig::paper_default(42);
    let mut app = FlipApp::new();
    let mut unrepl = baselines::run_unreplicated(&cfg, &mut app, workload(), 1000, 100);

    // 2. The same app replicated by uBFT's fast path: 2f+1 = 3 replicas,
    //    3 memory nodes, tolerating one Byzantine replica.
    let cfg = SimConfig::paper_default(42).fast_only();
    let apps: Vec<Box<dyn App>> =
        (0..3).map(|_| Box::new(FlipApp::new()) as Box<dyn App>).collect();
    let mut cluster = Cluster::new(cfg, apps, workload());
    let report = cluster.run(1000, 100);
    let mut ubft = report.latency;

    println!("unreplicated : p50 {:>8}   p99 {:>8}", unrepl.median(), unrepl.percentile(99.0));
    println!("uBFT fast    : p50 {:>8}   p99 {:>8}", ubft.median(), ubft.percentile(99.0));
    println!(
        "BFT overhead : {:.1} us at the median — microsecond-scale Byzantine fault tolerance",
        ubft.median().as_micros_f64() - unrepl.median().as_micros_f64()
    );
    println!(
        "fast path crypto ops: {} signs / {} verifies on the critical path (CTBcast)",
        report.counters.ctb_signs, report.counters.ctb_verifies
    );
}
