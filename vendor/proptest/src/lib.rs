//! Minimal, dependency-free, **deterministic** stand-in for the `proptest`
//! crate. The build environment has no access to a crate registry, so this
//! vendored shim implements exactly the API surface the uBFT test suites
//! use: `proptest!` with an optional `#![proptest_config(..)]` header,
//! `any::<T>()`, integer-range and tuple strategies,
//! `proptest::collection::vec`, and the `prop_assert*` macros.
//!
//! Unlike upstream proptest there is no persistence file and no shrinking:
//! every test runs a fixed number of cases from an RNG seeded by the test's
//! own name, so `cargo test -q` is reproducible run-to-run and finishes in
//! seconds. Failures report the case index so a failing case can be
//! replayed by keeping the test name and seed constant.

pub mod test_runner {
    /// Deterministic 64-bit PRNG (splitmix64 stream seeded from a name).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Fixed global seed; combined with the test name so distinct tests
        /// draw distinct-but-reproducible streams.
        pub const GLOBAL_SEED: u64 = 0xA5F0_2023_u64;

        pub fn deterministic(name: &str) -> Self {
            let mut h = Self::GLOBAL_SEED ^ 0x9E37_79B9_7F4A_7C15;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Run-configuration; only `cases` is meaningful in this shim.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A generator of values: the shim's equivalent of proptest's `Strategy`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(core::marker::PhantomData<T>);

/// `any::<T>()` — the full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy {:?}", self);
                let span = (*self.end() - *self.start()) as u64;
                match span.checked_add(1) {
                    // Full-width range: every bit pattern is in range.
                    None => rng.next_u64() as $t,
                    Some(n) => *self.start() + (rng.next_u64() % n) as $t,
                }
            }
        }
    )*};
}

arb_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_tuple {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

arb_tuple!(A / a, B / b);
arb_tuple!(A / a, B / b, C / c);
arb_tuple!(A / a, B / b, C / c, D / d);

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::generate(&self.len, rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Shim `proptest!`: expands each `fn name(pat in strategy, ..) { body }`
/// into a plain `#[test]`-style function that replays `cases` deterministic
/// inputs. The failing case index is prepended to panic messages via a
/// scoped message so counterexamples are identifiable.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }));
                if let Err(err) = result {
                    eprintln!(
                        "proptest-shim: test {} failed at case {}/{} (seed {:#x})",
                        stringify!($name),
                        case,
                        cfg.cases,
                        $crate::test_runner::TestRng::GLOBAL_SEED,
                    );
                    ::std::panic::resume_unwind(err);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
