//! Minimal, dependency-free stand-in for the `criterion` crate. The build
//! environment has no access to a crate registry, so this vendored shim
//! implements the API surface the uBFT benches use: `Criterion` with the
//! builder knobs, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally simple — per-benchmark median and mean of
//! wall-clock iteration time over `sample_size` samples — printed as one
//! line per benchmark. There is no HTML report, no outlier analysis, and no
//! saved baselines; the point is that `cargo bench` compiles, runs fast,
//! and prints comparable numbers.

use std::time::{Duration, Instant};

/// Hint to `iter_batched` about per-iteration input size. The shim batches
/// one input per iteration regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::with_capacity(self.sample_size) };
        // Warm-up pass: run once, discard timings.
        f(&mut b);
        b.samples.clear();
        let deadline = Instant::now() + self.measurement_time;
        while b.samples.len() < self.sample_size && Instant::now() < deadline {
            f(&mut b);
        }
        b.report(name);
        self
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` per call and records it as a sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        drop(out);
    }

    /// Times `routine` on a fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.samples.push(start.elapsed());
        drop(out);
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{name:<40} median {:>12?}  mean {:>12?}  ({} samples)",
            median,
            mean,
            self.samples.len()
        );
    }
}

/// Re-export matching criterion's `black_box` (std's is stable since 1.66).
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
